(* Application-level experiments: the hash table (Figure 11), Memcached
   (Figure 12), and the extra results the paper reports in prose
   (prefetchw message passing, small-scale multi-sockets, STM).  Like
   Figures, each section describes its simulations as independent pure
   jobs and prints from the results afterwards. *)

open Ssync_platform
open Ssync_engine
open Ssync_report
open Ssync_workload

let hr title = Printf.printf "\n==== %s ====\n%!" title

(* ------------------------- Figure 11 ------------------------------ *)

(* Lock-based ssht throughput: [threads] workers over the 80/10/10 mix. *)
let ssht_lock_throughput pid algo ~threads ~n_buckets ~capacity ~duration :
    float =
  Sim.serial_fallback ~policy_key:("ssht-lock:" ^ Arch.platform_name pid)
  @@ fun () ->
  let p = Platform.get pid in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let t =
    Ssync_ssht.Ssht_sim.create ~lock_algo:algo ~home_core:(Platform.place p 0)
      mem p ~n_threads:threads ~n_buckets ~capacity
  in
  let key_space = n_buckets * capacity in
  let local_work = Platform.local_work_for p ~threads in
  let b = Sim.make_barrier threads in
  let ops = Array.make threads 0 in
  for tid = 0 to threads - 1 do
    Sim.spawn sim ~core:(Platform.place p tid) (fun () ->
        if tid = 0 then Ssync_ssht.Ssht_sim.prefill t ~tid ~key_space;
        Sim.await b;
        let rng = Rng.create ~seed:(tid + 1) in
        let deadline = Sim.now () + duration in
        let n = ref 0 in
        while Sim.now () < deadline do
          let k = Rng.int rng key_space in
          Sim.pause local_work; (* key handling, hashing *)
          (match Op_mix.sample Op_mix.paper rng with
          | Op_mix.Get ->
              ignore (Ssync_ssht.Ssht_sim.get_or t ~tid k ~default:0)
          | Op_mix.Put -> ignore (Ssync_ssht.Ssht_sim.put t ~tid k (k * 2))
          | Op_mix.Remove -> ignore (Ssync_ssht.Ssht_sim.remove t ~tid k));
          incr n
        done;
        ops.(tid) <- !n)
  done;
  ignore (Sim.run sim ~until:((duration * 12) + 80_000_000));
  (* the bound leaves room for the pre-fill phase before the barrier *)
  Platform.mops p ~ops:(Array.fold_left ( + ) 0 ops) ~cycles:duration

(* Message-passing ssht: one server per three threads (paper's best). *)
let ssht_mp_throughput pid ~threads ~n_buckets ~capacity ~duration : float =
  Sim.serial_fallback ~policy_key:("ssht-mp:" ^ Arch.platform_name pid)
  @@ fun () ->
  let p = Platform.get pid in
  let n_servers = max 1 (threads / 3) in
  let n_clients = max 1 (threads - n_servers) in
  if n_servers + n_clients > Platform.n_cores p then 0.
  else begin
    let sim = Sim.create p in
    let mem = Sim.memory sim in
    let server_cores = Array.init n_servers (fun i -> Platform.place p i) in
    let client_cores =
      Array.init n_clients (fun i -> Platform.place p (n_servers + i))
    in
    let t =
      Ssync_ssht.Ssht_mp.create mem p ~server_cores ~client_cores
        ~touch_lines:3
        ~server_work:(Platform.local_work p)
    in
    let key_space = n_buckets * capacity in
    (* prefill directly into the server partitions (free, like the
       lock-based prefill which happens before the measured window) *)
    for k = 0 to (key_space / 2) - 1 do
      let s = Ssync_ssht.Ssht_mp.server_of t k in
      Hashtbl.replace t.Ssync_ssht.Ssht_mp.servers.(s).Ssync_ssht.Ssht_mp.table
        k (k * 2)
    done;
    for i = 0 to n_servers - 1 do
      Sim.spawn sim ~core:server_cores.(i) (fun () ->
          Ssync_ssht.Ssht_mp.run_server t i)
    done;
    let ops = Array.make n_clients 0 in
    let b = Sim.make_barrier n_clients in
    for c = 0 to n_clients - 1 do
      Sim.spawn sim ~core:client_cores.(c) (fun () ->
          Sim.await b;
          let rng = Rng.create ~seed:(c + 1) in
          let deadline = Sim.now () + duration in
          let n = ref 0 in
          while Sim.now () < deadline do
            let k = Rng.int rng key_space in
            Sim.pause (Platform.local_work p); (* key handling, hashing *)
            (match Op_mix.sample Op_mix.paper rng with
            | Op_mix.Get -> ignore (Ssync_ssht.Ssht_mp.get t ~client:c k)
            | Op_mix.Put -> ignore (Ssync_ssht.Ssht_mp.put t ~client:c k (k * 2))
            | Op_mix.Remove -> ignore (Ssync_ssht.Ssht_mp.remove t ~client:c k));
            incr n
          done;
          ops.(c) <- !n;
          Ssync_ssht.Ssht_mp.stop t ~client:c)
    done;
    ignore (Sim.run sim ~until:(duration * 12));
    Platform.mops p ~ops:(Array.fold_left ( + ) 0 ops) ~cycles:duration
  end

let fig11 ?(duration = 150_000) () =
  let thread_samples pid =
    match pid with
    | Arch.Opteron -> [ 1; 6; 18; 36 ]
    | Arch.Xeon -> [ 1; 10; 18; 36 ]
    | _ -> [ 1; 8; 18; 36 ]
  in
  let configs = [ (512, 12); (512, 48); (12, 12); (12, 48) ] in
  (* One job per (config, platform, lock algo, thread count) plus one
     per (config, platform, thread count) for the message-passing
     variant.  The serial code also ran each 1-thread point a second
     time to find the single-thread best; the runs are deterministic,
     so the planned version reuses the 1-thread slots instead. *)
  let lock_combos =
    List.concat_map
      (fun cfg ->
        List.concat_map
          (fun pid ->
            let algos =
              Ssync_simlocks.Simlock.algos_for (Platform.get pid)
            in
            List.concat_map
              (fun algo ->
                List.map (fun n -> (cfg, pid, algo, n)) (thread_samples pid))
              algos)
          Arch.paper_platform_ids)
      configs
  in
  let mp_combos =
    List.concat_map
      (fun cfg ->
        List.concat_map
          (fun pid -> List.map (fun n -> (cfg, pid, n)) (thread_samples pid))
          Arch.paper_platform_ids)
      configs
  in
  let lock_jobs, got_lock =
    Section.sweep lock_combos (fun ((n_buckets, capacity), pid, algo, n) ->
        ssht_lock_throughput pid algo ~threads:n ~n_buckets ~capacity ~duration)
  in
  let mp_jobs, got_mp =
    Section.sweep mp_combos (fun ((n_buckets, capacity), pid, n) ->
        ssht_mp_throughput pid ~threads:n ~n_buckets ~capacity ~duration)
  in
  let lock_index = Hashtbl.create 512 and mp_index = Hashtbl.create 128 in
  List.iteri (fun i c -> Hashtbl.replace lock_index c i) lock_combos;
  List.iteri (fun i c -> Hashtbl.replace mp_index c i) mp_combos;
  let lock_at cfg pid algo n =
    got_lock (Hashtbl.find lock_index (cfg, pid, algo, n))
  in
  let mp_at cfg pid n = got_mp (Hashtbl.find mp_index (cfg, pid, n)) in
  Section.make ~jobs:(Array.append lock_jobs mp_jobs) (fun () ->
      hr
        "Figure 11: ssht throughput (Mops/s); \"X : Y\" = scalability : best \
         lock; mp = message-passing version";
      List.iter
        (fun ((n_buckets, capacity) as cfg) ->
          Printf.printf "\n-- %d buckets, %d entries/bucket --\n" n_buckets
            capacity;
          let t =
            Table.create
              ~aligns:
                [ Table.Left; Table.Right; Table.Right; Table.Left; Table.Right ]
              [ "platform"; "threads"; "best-lock Mops"; "X : lock"; "mp Mops" ]
          in
          List.iter
            (fun pid ->
              let p = Platform.get pid in
              let algos = Ssync_simlocks.Simlock.algos_for p in
              let single =
                List.fold_left
                  (fun acc a -> Float.max acc (lock_at cfg pid a 1))
                  0. algos
              in
              List.iter
                (fun threads ->
                  let best_algo, best =
                    List.fold_left
                      (fun (ba, bm) a ->
                        let m = lock_at cfg pid a threads in
                        if m > bm then (a, m) else (ba, bm))
                      (List.hd algos, -1.) algos
                  in
                  let mp = mp_at cfg pid threads in
                  Table.add_row t
                    [
                      Arch.platform_name pid;
                      string_of_int threads;
                      Printf.sprintf "%.1f" best;
                      Printf.sprintf "%.1fx : %s"
                        (if single > 0. then best /. single else 0.)
                        (Ssync_simlocks.Simlock.name best_algo);
                      Printf.sprintf "%.1f" mp;
                    ])
                (thread_samples pid))
            Arch.paper_platform_ids;
          Table.print t)
        configs)

(* ------------------------- Figure 12 ------------------------------ *)

let fig12 ?(duration = 2_000_000) () =
  let samples pid =
    match pid with Arch.Xeon -> [ 1; 10; 18 ] | _ -> [ 1; 6; 18 ]
  in
  let combos =
    List.concat_map
      (fun pid ->
        List.concat_map
          (fun threads ->
            List.map
              (fun algo -> (pid, threads, algo))
              Ssync_kvs.Kvs_sim.figure12_locks)
          (samples pid))
      Arch.paper_platform_ids
  in
  let jobs, got =
    Section.sweep combos (fun (pid, threads, algo) ->
        Ssync_kvs.Kvs_sim.set_throughput ~duration pid algo ~threads)
  in
  Section.make ~jobs (fun () ->
      hr
        "Figure 12: Memcached-model set-only throughput (Kops/s) by lock \
         algorithm (paper: TAS/TICKET/MCS beat MUTEX by 29-50%)";
      let t =
        Table.create
          ~aligns:
            [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
              Table.Right ]
          [ "platform"; "threads"; "MUTEX"; "TAS"; "TICKET"; "MCS" ]
      in
      let next = Section.cursor got in
      let speedups = ref [] in
      List.iter
        (fun pid ->
          let best_overall = ref 0. and single_best = ref 0. in
          List.iter
            (fun threads ->
              let row =
                List.map (fun _ -> next ()) Ssync_kvs.Kvs_sim.figure12_locks
              in
              List.iter
                (fun v ->
                  if threads = 1 then single_best := Float.max !single_best v;
                  best_overall := Float.max !best_overall v)
                row;
              Table.add_row t
                (Arch.platform_name pid :: string_of_int threads
                :: List.map (fun v -> Printf.sprintf "%.0f" v) row))
            (samples pid);
          if !single_best > 0. then
            speedups :=
              (Arch.platform_name pid, !best_overall /. !single_best)
              :: !speedups)
        Arch.paper_platform_ids;
      Table.print t;
      Printf.printf
        "\nmax speed-up vs single thread (paper: 3.9x / 6x / 6.03x / 5.9x):\n";
      List.iter
        (fun (name, x) -> Printf.printf "  %s: %.1fx\n" name x)
        (List.rev !speedups))

(* ----------------------- extra experiments ------------------------ *)

let extra_prefetchw_mp () =
  let jobs, got =
    Section.sweep [ () ] (fun () ->
        Ssync_ccbench.Mp_bench.opteron_prefetchw_speedup ())
  in
  Section.make ~jobs (fun () ->
      hr
        "Extra (section 5.3): Opteron message passing with/without prefetchw \
         (paper: up to 2.5x faster)";
      let plain, pfw = got 0 in
      Printf.printf
        "round-trip, two hops: plain %.0f cycles, prefetchw %.0f cycles -> \
         %.2fx\n"
        plain pfw (plain /. pfw))

let extra_small_platforms () =
  (* pure cost-model arithmetic; no simulations to fan out *)
  Section.serial (fun () ->
      hr
        "Extra (section 8): small-scale multi-sockets; cross/intra-socket \
         load latency ratios (paper: ~1.6x Opteron2, ~2.7x Xeon2)";
      List.iter
        (fun (pid, paper_ratio) ->
          let p = Platform.get pid in
          let topo = p.Platform.topo in
          let mk holder : Ssync_platform.Cost_model.view =
            {
              state = Arch.Modified;
              owner = Some holder;
              sharers = Ssync_platform.Coreset.of_list [];
              home = topo.Topology.mem_node_of_core holder;
              llc_dirty = false;
            }
          in
          let intra = Cost_model.op_latency topo Arch.Load ~requester:0 (mk 1) in
          let cross =
            Cost_model.op_latency topo Arch.Load ~requester:0
              (mk (Platform.n_cores p - 1))
          in
          Printf.printf "%s: intra %d, cross %d -> %.2fx (paper ~%.1fx)\n"
            (Arch.platform_name pid) intra cross
            (float_of_int cross /. float_of_int intra)
            paper_ratio)
        [ (Arch.Opteron2, 1.6); (Arch.Xeon2, 2.7) ])

(* STM bank benchmark: lock-based vs message-passing TM2C backends. *)
let stm_throughput pid backend ~threads ~accounts ~duration : float =
  Sim.serial_fallback ~policy_key:("stm:" ^ Arch.platform_name pid)
  @@ fun () ->
  let p = Platform.get pid in
  let sim = Sim.create p in
  let mem = Sim.memory sim in
  let txns = Array.make threads 0 in
  (match backend with
  | `Lock ->
      let t = Ssync_tm.Tm_sim.create_lock_based ~home_core:(Platform.place p 0)
          mem ~n_cells:accounts in
      let b = Sim.make_barrier threads in
      for tid = 0 to threads - 1 do
        Sim.spawn sim ~core:(Platform.place p tid) (fun () ->
            Sim.await b;
            let rng = Rng.create ~seed:(tid + 1) in
            let deadline = Sim.now () + duration in
            let n = ref 0 in
            while Sim.now () < deadline do
              let a = Rng.int rng accounts and c = Rng.int rng accounts in
              if a <> c then begin
                let cells = List.sort_uniq compare [ a; c ] in
                ignore
                  (Ssync_tm.Tm_sim.transaction_lock_based t ~cells (fun vs ->
                       match (cells, vs) with
                       | ([ x; y ], [| vx; vy |]) -> [ (x, vx - 1); (y, vy + 1) ]
                       | _ -> []));
                incr n
              end
            done;
            txns.(tid) <- !n)
      done;
      ignore (Sim.run sim ~until:(duration * 12))
  | `Mp ->
      let n_servers = max 1 (threads / 3) in
      let n_clients = max 1 (threads - n_servers) in
      let server_cores = Array.init n_servers (fun i -> Platform.place p i) in
      let client_cores =
        Array.init n_clients (fun i -> Platform.place p (n_servers + i))
      in
      let t =
        Ssync_tm.Tm_sim.create_mp_based mem p ~n_cells:accounts ~server_cores
          ~client_cores
      in
      for i = 0 to n_servers - 1 do
        Sim.spawn sim ~core:server_cores.(i) (fun () ->
            Ssync_tm.Tm_sim.run_mp_server t i)
      done;
      let b = Sim.make_barrier n_clients in
      for c = 0 to n_clients - 1 do
        Sim.spawn sim ~core:client_cores.(c) (fun () ->
            Sim.await b;
            let rng = Rng.create ~seed:(c + 1) in
            let deadline = Sim.now () + duration in
            let n = ref 0 in
            while Sim.now () < deadline do
              let a = Rng.int rng accounts and x = Rng.int rng accounts in
              if a <> x then begin
                let cells = List.sort_uniq compare [ a; x ] in
                ignore
                  (Ssync_tm.Tm_sim.transaction_mp t ~client:c ~cells (fun vs ->
                       match (cells, vs) with
                       | ([ i; j ], [| vi; vj |]) -> [ (i, vi - 1); (j, vj + 1) ]
                       | _ -> []));
                incr n
              end
            done;
            txns.(c) <- !n;
            Ssync_tm.Tm_sim.stop_mp t ~client:c)
      done;
      ignore (Sim.run sim ~until:(duration * 12)));
  Platform.mops p ~ops:(Array.fold_left ( + ) 0 txns) ~cycles:duration

let extra_stm ?(duration = 150_000) () =
  let contentions = [ ("low (512 accts)", 512); ("high (8 accts)", 8) ] in
  let combos =
    List.concat_map
      (fun pid ->
        List.concat_map
          (fun (label, accounts) ->
            List.concat_map
              (fun threads ->
                [ (pid, label, accounts, threads, `Lock);
                  (pid, label, accounts, threads, `Mp) ])
              [ 1; 6; 18; 36 ])
          contentions)
      [ Arch.Opteron; Arch.Tilera ]
  in
  let jobs, got =
    Section.sweep combos (fun (pid, _, accounts, threads, backend) ->
        stm_throughput pid backend ~threads ~accounts ~duration)
  in
  Section.make ~jobs (fun () ->
      hr
        "Extra (section 8): TM2C bank-transfer throughput (Mtxn/s), \
         lock-based vs message-passing (paper: results mirror the hash table)";
      let t =
        Table.create
          ~aligns:
            [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
          [ "platform"; "contention"; "threads"; "lock"; "mp" ]
      in
      let next = Section.cursor got in
      List.iter
        (fun pid ->
          List.iter
            (fun (label, _) ->
              List.iter
                (fun threads ->
                  let lk = next () in
                  let mp = next () in
                  Table.add_row t
                    [
                      Arch.platform_name pid;
                      label;
                      string_of_int threads;
                      Printf.sprintf "%.2f" lk;
                      Printf.sprintf "%.2f" mp;
                    ])
                [ 1; 6; 18; 36 ])
            contentions)
        [ Arch.Opteron; Arch.Tilera ];
      Table.print t)
