(* chaos: deterministic crash-sweep over the robust lock suite.

   Fans a seeded sweep of (platform x lock x seed x crash schedule)
   across the domain pool.  Every run is one pure job: it installs its
   own trace sink, runs a two-line repair workload through the robust
   acquisition paths under [Fault.crash_stop], then replays the trace
   through [Invariant.check] (mutual exclusion, bounded overtaking for
   the FIFO locks, lost wakeups, post-recovery liveness) and checks the
   data invariant the critical sections maintain.  The sweep is
   reproducible run-to-run and at any [--jobs] count.

   A violating configuration is greedily shrunk (fewer victims, fewer
   threads, shorter window) to a minimal repro, printed as a KEY that
   [chaos --repro KEY] replays verbosely, and appended to
   [chaos_repro.txt] for CI to archive.

   The workload's data invariant: each critical section reads [d1],
   bumps [d1], works, bumps [d2] — so [d1 = d2] whenever no holder is
   mid-section.  A crash between the bumps leaves [d1 = d2 + 1] until
   the next grant's [Owner_died] witness repairs it; a final skew of
   anything else is a lost-update/botched-recovery signal no lock-event
   trace can see. *)

open Ssync_platform
open Ssync_coherence
open Ssync_engine
open Ssync_simlocks
module Trace = Ssync_trace.Trace

type cfg = {
  pid : Arch.platform_id;
  algo : Simlock.algo;
  seed : int;
  threads : int;
  duration : int;
  victims : (int * int) list; (* (engine tid, crash time) *)
}

(* KEY: platform:LOCK:seed:threads:duration:v@t[,v@t...] *)
let key_of c =
  Printf.sprintf "%s:%s:%d:%d:%d:%s"
    (String.lowercase_ascii (Arch.platform_name c.pid))
    (Simlock.name c.algo) c.seed c.threads c.duration
    (String.concat ","
       (List.map (fun (v, t) -> Printf.sprintf "%d@%d" v t) c.victims))

let cfg_of_key s =
  match String.split_on_char ':' s with
  | [ p; l; seed; threads; duration; victims ] -> (
      let victim v =
        match String.split_on_char '@' v with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> Some (a, b)
            | _ -> None)
        | _ -> None
      in
      let vs =
        if victims = "" then Some []
        else
          let parts = String.split_on_char ',' victims in
          let parsed = List.filter_map victim parts in
          if List.length parsed = List.length parts then Some parsed else None
      in
      match
        ( Arch.platform_of_string p,
          Simlock.of_string l,
          int_of_string_opt seed,
          int_of_string_opt threads,
          int_of_string_opt duration,
          vs )
      with
      | Some pid, Some algo, Some seed, Some threads, Some duration, Some v ->
          Some { pid; algo; seed; threads; duration; victims = v }
      | _ -> None)
  | _ -> None

type outcome = {
  o_cfg : cfg;
  o_completed : bool; (* engine verdict was Completed *)
  o_violations : string list; (* pretty-printed, deterministic order *)
  o_steals : int;
  o_crashed : int; (* threads actually crash-stopped *)
  o_grants : int;
  o_owner_deaths : int;
  o_dead_holders : int;
  o_excised : int;
  o_recoveries : int;
  o_recovery_cycles : int;
  o_max_overtakes : int;
  o_ops : int;
  o_truncated : bool;
}

let ok o = o.o_violations = []

(* ------------------------------------------------------------------ *)
(* One chaos run: the pure job the pool executes. *)

type shared = {
  lock : Lock_type.t;
  d1 : Memory.addr;
  d2 : Memory.addr;
}

let run_one (c : cfg) : outcome =
  let p = Platform.get c.pid in
  ignore (Trace.start ~capacity:(1 lsl 18) ());
  let faults = Fault.crash_stop ~seed:c.seed c.victims in
  let captured = ref None in
  let r =
    Harness.run ~faults p ~threads:c.threads ~duration:c.duration
      ~setup:(fun mem ->
        let sh =
          {
            lock = Simlock.create mem p ~n_threads:c.threads c.algo;
            d1 = Memory.alloc ~home_core:0 mem;
            d2 = Memory.alloc ~home_core:0 mem;
          }
        in
        captured := Some (mem, sh);
        sh)
      ~body:(fun sh _mem ~tid ~deadline ->
        let n = ref 0 in
        while Sim.now () < deadline do
          (match sh.lock.Lock_type.acquire_robust ~tid with
          | Lock_type.Clean -> ()
          | Lock_type.Owner_died _ ->
              (* repair: the corpse may have bumped d1 but not d2 *)
              Sim.store sh.d2 (Sim.load sh.d1));
          let x = Sim.load sh.d1 in
          Sim.store sh.d1 (x + 1);
          Sim.pause 60;
          Sim.store sh.d2 (x + 1);
          sh.lock.Lock_type.release_robust ~tid;
          incr n;
          Sim.pause 120
        done;
        !n)
  in
  let tr = match Trace.stop () with Some t -> t | None -> assert false in
  let mem, sh = Option.get !captured in
  let order = Harness.spawn_order ~threads:c.threads in
  let completed etid =
    etid >= 0 && etid < c.threads && r.Harness.completed.(order.(etid))
  in
  let rep = Invariant.check ~completed tr in
  let violations = List.map Invariant.pp_violation rep.Invariant.violations in
  let violations =
    if r.Harness.health.Sim.verdict = Sim.Completed then violations
    else
      violations
      @ [
          Printf.sprintf "[stall] %s"
            (Sim.verdict_to_string r.Harness.health.Sim.verdict);
        ]
  in
  (* the critical sections' own invariant, invisible to lock events *)
  let d1 = Memory.peek mem sh.d1 and d2 = Memory.peek mem sh.d2 in
  let crashed = List.length r.Harness.health.Sim.crashed in
  let violations =
    if d1 = d2 then violations
    else if d1 = d2 + 1 && crashed > 0 then
      (* a victim died between the bumps and no grant followed to
         repair it: consistent with crash-stop, not a violation *)
      violations
    else
      violations
      @ [
          Printf.sprintf
            "[data] d1=%d d2=%d after the run (crashed=%d): lost update or \
             botched recovery"
            d1 d2 crashed;
        ]
  in
  let st = sh.lock.Lock_type.rstats in
  {
    o_cfg = c;
    o_completed = r.Harness.health.Sim.verdict = Sim.Completed;
    o_violations = violations;
    o_steals = rep.Invariant.steals;
    o_crashed = crashed;
    o_grants = st.Lock_type.r_grants;
    o_owner_deaths = st.Lock_type.r_owner_deaths;
    o_dead_holders = st.Lock_type.r_dead_holders;
    o_excised = st.Lock_type.r_excised;
    o_recoveries = st.Lock_type.r_recoveries;
    o_recovery_cycles = st.Lock_type.r_recovery_cycles;
    o_max_overtakes = rep.Invariant.max_overtakes;
    o_ops = r.Harness.total_ops;
    o_truncated = rep.Invariant.truncated;
  }

(* ------------------------------------------------------------------ *)
(* Sweep construction.  Crash schedules are fractions of the window so
   the same shapes stress early (mid-queue), middle (in-CS) and late
   (near-deadline) deaths at any duration; the double-crash schedule
   exercises multi-corpse excision. *)

let schedules ~duration =
  [
    [ (0, duration * 15 / 100) ];
    [ (2, duration * 45 / 100) ];
    [ (0, duration * 30 / 100); (3, duration * 60 / 100) ];
  ]

let sweep ~quick =
  let platforms =
    if quick then [ Arch.Opteron ] else [ Arch.Opteron; Arch.Xeon; Arch.Niagara ]
  in
  let seeds = if quick then [ 1 ] else [ 1; 2 ] in
  let threads = 6 and duration = 120_000 in
  List.concat_map
    (fun pid ->
      let p = Platform.get pid in
      List.concat_map
        (fun algo ->
          List.concat_map
            (fun seed ->
              List.map
                (fun victims -> { pid; algo; seed; threads; duration; victims })
                (schedules ~duration))
            seeds)
        (Simlock.algos_for p))
    platforms

(* ------------------------------------------------------------------ *)
(* Shrinking: greedily re-run smaller variants of a violating config
   until none still violates.  Order matters for determinism: drop
   extra victims first, then shed threads, then shorten the window. *)

let candidates c =
  let min_threads =
    2 + List.fold_left (fun m (v, _) -> max m v) 0 c.victims
  in
  List.concat
    [
      (match c.victims with
      | _ :: _ :: _ -> [ { c with victims = [ List.hd c.victims ] } ]
      | _ -> []);
      (if c.threads > min_threads then
         [
           { c with threads = max min_threads (c.threads / 2) };
           { c with threads = c.threads - 1 };
         ]
       else []);
      (if c.duration > 30_000 then
         [ { c with duration = c.duration * 3 / 4 } ]
       else []);
    ]

let shrink c0 =
  let budget = ref 40 in
  let rec go c =
    if !budget <= 0 then c
    else
      let next =
        List.find_opt
          (fun c' ->
            if !budget <= 0 then false
            else begin
              decr budget;
              not (ok (run_one c'))
            end)
          (candidates c)
      in
      match next with Some c' -> go c' | None -> c
  in
  go c0

(* ------------------------------------------------------------------ *)
(* Scorecard: one row per (platform, lock), aggregated over the sweep.
   Mean recovery latency is cycles from first detecting a recovery
   condition to the grant that closed the episode. *)

let scorecard outcomes =
  let module Table = Ssync_report.Table in
  let key o =
    (Arch.platform_name o.o_cfg.pid, Simlock.name o.o_cfg.algo)
  in
  let keys =
    List.fold_left
      (fun acc o -> if List.mem (key o) acc then acc else key o :: acc)
      [] outcomes
    |> List.rev
  in
  let t =
    Table.create
      ~aligns:
        [
          Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
        ]
      [
        "platform"; "lock"; "runs"; "ok"; "crashes"; "recoveries";
        "excised"; "steals"; "rec-cy"; "violations";
      ]
  in
  List.iter
    (fun k ->
      let os = List.filter (fun o -> key o = k) outcomes in
      let sum f = List.fold_left (fun a o -> a + f o) 0 os in
      let recoveries = sum (fun o -> o.o_recoveries) in
      let rec_cy =
        if recoveries = 0 then "-"
        else
          Printf.sprintf "%d" (sum (fun o -> o.o_recovery_cycles) / recoveries)
      in
      Table.add_row t
        [
          fst k; snd k;
          string_of_int (List.length os);
          string_of_int (List.length (List.filter ok os));
          string_of_int (sum (fun o -> o.o_crashed));
          string_of_int recoveries;
          string_of_int (sum (fun o -> o.o_excised));
          string_of_int (sum (fun o -> o.o_steals));
          rec_cy;
          string_of_int (sum (fun o -> List.length o.o_violations));
        ])
    keys;
  Table.print t

let print_outcome o =
  Printf.printf
    "%s\n  verdict: %s  ops: %d  crashed: %d  grants: %d  owner-deaths: %d\n\
    \  dead-holders: %d  excised: %d  steals: %d  recoveries: %d  rec-cy: %d\n\
    \  max-overtakes: %d%s\n"
    (key_of o.o_cfg)
    (if o.o_completed then "completed" else "STALLED")
    o.o_ops o.o_crashed o.o_grants o.o_owner_deaths o.o_dead_holders o.o_excised
    o.o_steals o.o_recoveries o.o_recovery_cycles o.o_max_overtakes
    (if o.o_truncated then "  (trace ring overflowed: checks partial)" else "");
  List.iter (fun v -> Printf.printf "  VIOLATION %s\n" v) o.o_violations

(* ------------------------------------------------------------------ *)

let run_repro key =
  match cfg_of_key key with
  | None ->
      Printf.eprintf "chaos --repro: malformed key %S\n" key;
      exit 2
  | Some c ->
      let o = run_one c in
      print_outcome o;
      if ok o then begin
        Printf.printf "OK: no violation\n";
        exit 0
      end
      else exit 1

let run ~quick ~jobs args =
  (match args with
  | [ "--repro"; key ] -> run_repro key
  | [ "--repro" ] ->
      Printf.eprintf "chaos --repro: missing KEY\n";
      exit 2
  | [] -> ()
  | a :: _ ->
      Printf.eprintf "chaos: unknown argument %S (try --repro KEY)\n" a;
      exit 2);
  let cfgs = sweep ~quick in
  Printf.printf "chaos sweep: %d runs (%s mode, %d jobs)\n%!"
    (List.length cfgs)
    (if quick then "quick" else "full")
    jobs;
  let thunks = Array.of_list (List.map (fun c () -> run_one c) cfgs) in
  let results = Pool.run ~jobs thunks in
  let outcomes = Array.to_list (Array.map fst results) in
  scorecard outcomes;
  let bad = List.filter (fun o -> not (ok o)) outcomes in
  if bad = [] then
    Printf.printf "\nOK: %d runs, every lock recovered, zero violations\n"
      (List.length outcomes)
  else begin
    Printf.printf "\n%d violating run(s); shrinking to minimal repros...\n"
      (List.length bad);
    let oc = open_out "chaos_repro.txt" in
    List.iter
      (fun o ->
        print_outcome o;
        let c' = shrink o.o_cfg in
        Printf.printf "  shrunk repro: --repro %s\n" (key_of c');
        Printf.fprintf oc "%s\n" (key_of c'))
      bad;
    close_out oc;
    Printf.printf "(shrunk keys written to chaos_repro.txt)\n";
    exit 1
  end
