(* A figure/table section split into two phases:

   - [jobs]: the section's simulations, described as independent pure
     thunks.  Each job writes its result into a slot private to the
     section; jobs never print.  Because every simulation builds its own
     [Sim.t]/[Memory.t] and draws from its own seeded RNG, jobs compute
     the same values whatever domain or order runs them — which is what
     lets the driver fan them across a [Pool] and still render
     byte-identical output at any [--jobs] count.

   - [render]: reads the slots and prints the section's tables/series.
     Runs on the main domain, in section declaration order, after every
     job of the run has finished.

   Sections with no simulations (static tables, host-CPU Bechamel runs
   whose wall-clock numbers are inherently nondeterministic) use
   [serial]: an empty job list and a render that does all the work. *)

type t = {
  jobs : (unit -> unit) array;
  render : unit -> unit;
}

let make ~jobs render = { jobs; render }
let serial render = { jobs = [||]; render }

(* [sweep items run] describes one job per item: job [i] stores
   [run item_i].  Returns the jobs and an accessor for slot [i]; the
   accessor must only be called from [render] (after the jobs ran). *)
let sweep (items : 'a list) (run : 'a -> 'b) :
    (unit -> unit) array * (int -> 'b) =
  let arr = Array.of_list items in
  let out = Array.make (Array.length arr) None in
  let jobs = Array.mapi (fun i x () -> out.(i) <- Some (run x)) arr in
  let got i =
    match out.(i) with
    | Some v -> v
    | None -> invalid_arg "Section.sweep: result read before its job ran"
  in
  (jobs, got)

(* Replay sweep results in item order: renders that loop over the same
   nested structure as the plan did just pull the next slot. *)
let cursor (got : int -> 'b) : unit -> 'b =
  let i = ref 0 in
  fun () ->
    let v = got !i in
    incr i;
    v
