(* Bechamel microbenchmarks of the *native* lock library: uncontended
   acquire+release per algorithm, native channel send/recv, an ssht
   operation and a TM transaction.  These measure the OCaml
   implementations on the host CPU (single-core; scaling numbers come
   from the simulator sections). *)

open Bechamel
open Toolkit

let lock_tests () =
  List.map
    (fun algo ->
      let lock = Ssync_locks.Libslock.create ~max_threads:2 algo in
      Test.make
        ~name:(Ssync_locks.Libslock.name algo)
        (Staged.stage (fun () ->
             lock.Ssync_locks.Lock.acquire ();
             lock.Ssync_locks.Lock.release ())))
    Ssync_locks.Libslock.all

let channel_test () =
  let ch = Ssync_mp.Channel.create () in
  Test.make ~name:"channel send+recv"
    (Staged.stage (fun () ->
         Ssync_mp.Channel.send ch 42;
         ignore (Ssync_mp.Channel.recv ch)))

let ssht_test () =
  let t = Ssync_ssht.Ssht.create ~n_buckets:64 () in
  for i = 0 to 99 do
    ignore (Ssync_ssht.Ssht.put t i i)
  done;
  let k = ref 0 in
  Test.make ~name:"ssht get+put"
    (Staged.stage (fun () ->
         k := (!k + 17) mod 100;
         ignore (Ssync_ssht.Ssht.get t !k);
         ignore (Ssync_ssht.Ssht.put t !k !k)))

let tm_test () =
  let tm = Ssync_tm.Tm.create ~size:16 in
  let i = ref 0 in
  Test.make ~name:"tm transfer txn"
    (Staged.stage (fun () ->
         i := (!i + 1) mod 15;
         let a = !i and b = !i + 1 in
         Ssync_tm.Tm.atomically tm (fun tx ->
             let va = Ssync_tm.Tm.read tx a and vb = Ssync_tm.Tm.read tx b in
             Ssync_tm.Tm.write tx a (va - 1);
             Ssync_tm.Tm.write tx b (vb + 1))))

let benchmark () =
  let test =
    Test.make_grouped ~name:"native"
      ([ channel_test (); ssht_test (); tm_test () ] @ lock_tests ())
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  results

(* Render-only section: Bechamel measures host wall-clock, which is
   nondeterministic by nature, so this section runs serially on the
   main domain and is excluded from the byte-identity guarantee the
   simulator sections carry. *)
let run () =
  Section.serial @@ fun () ->
  Printf.printf
    "\n==== Native microbenchmarks (Bechamel, uncontended, host CPU) ====\n%!";
  let results = benchmark () in
  Printf.printf "%-28s %14s\n" "benchmark" "ns/op";
  Printf.printf "%s\n" (String.make 44 '-');
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-28s %14.1f\n" name est
      | _ -> Printf.printf "%-28s %14s\n" name "-")
    results
